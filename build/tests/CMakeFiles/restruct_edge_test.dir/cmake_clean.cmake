file(REMOVE_RECURSE
  "CMakeFiles/restruct_edge_test.dir/core/restruct_edge_test.cc.o"
  "CMakeFiles/restruct_edge_test.dir/core/restruct_edge_test.cc.o.d"
  "restruct_edge_test"
  "restruct_edge_test.pdb"
  "restruct_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restruct_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
