file(REMOVE_RECURSE
  "CMakeFiles/relational_misc_edge_test.dir/relational/misc_edge_test.cc.o"
  "CMakeFiles/relational_misc_edge_test.dir/relational/misc_edge_test.cc.o.d"
  "relational_misc_edge_test"
  "relational_misc_edge_test.pdb"
  "relational_misc_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relational_misc_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
