# Empty dependencies file for selection_analysis_test.
# This may be replaced when dependencies are built.
