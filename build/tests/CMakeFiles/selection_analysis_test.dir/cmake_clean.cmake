file(REMOVE_RECURSE
  "CMakeFiles/selection_analysis_test.dir/sql/selection_analysis_test.cc.o"
  "CMakeFiles/selection_analysis_test.dir/sql/selection_analysis_test.cc.o.d"
  "selection_analysis_test"
  "selection_analysis_test.pdb"
  "selection_analysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selection_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
