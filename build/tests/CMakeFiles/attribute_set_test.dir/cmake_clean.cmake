file(REMOVE_RECURSE
  "CMakeFiles/attribute_set_test.dir/relational/attribute_set_test.cc.o"
  "CMakeFiles/attribute_set_test.dir/relational/attribute_set_test.cc.o.d"
  "attribute_set_test"
  "attribute_set_test.pdb"
  "attribute_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attribute_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
