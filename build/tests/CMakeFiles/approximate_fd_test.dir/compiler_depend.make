# Empty compiler generated dependencies file for approximate_fd_test.
# This may be replaced when dependencies are built.
