# Empty compiler generated dependencies file for ind_test.
# This may be replaced when dependencies are built.
