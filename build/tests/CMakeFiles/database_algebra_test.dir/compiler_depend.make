# Empty compiler generated dependencies file for database_algebra_test.
# This may be replaced when dependencies are built.
