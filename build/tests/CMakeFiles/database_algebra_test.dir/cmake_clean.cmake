file(REMOVE_RECURSE
  "CMakeFiles/database_algebra_test.dir/relational/database_algebra_test.cc.o"
  "CMakeFiles/database_algebra_test.dir/relational/database_algebra_test.cc.o.d"
  "database_algebra_test"
  "database_algebra_test.pdb"
  "database_algebra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/database_algebra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
