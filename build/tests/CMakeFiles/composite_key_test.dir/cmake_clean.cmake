file(REMOVE_RECURSE
  "CMakeFiles/composite_key_test.dir/workload/composite_key_test.cc.o"
  "CMakeFiles/composite_key_test.dir/workload/composite_key_test.cc.o.d"
  "composite_key_test"
  "composite_key_test.pdb"
  "composite_key_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/composite_key_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
