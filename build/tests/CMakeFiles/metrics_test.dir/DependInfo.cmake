
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/workload/metrics_test.cc" "tests/CMakeFiles/metrics_test.dir/workload/metrics_test.cc.o" "gcc" "tests/CMakeFiles/metrics_test.dir/workload/metrics_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/dbre_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dbre_core.dir/DependInfo.cmake"
  "/root/repo/build/src/eer/CMakeFiles/dbre_eer.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/dbre_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/deps/CMakeFiles/dbre_deps.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/dbre_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dbre_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
