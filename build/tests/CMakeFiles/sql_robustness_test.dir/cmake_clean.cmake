file(REMOVE_RECURSE
  "CMakeFiles/sql_robustness_test.dir/sql/robustness_test.cc.o"
  "CMakeFiles/sql_robustness_test.dir/sql/robustness_test.cc.o.d"
  "sql_robustness_test"
  "sql_robustness_test.pdb"
  "sql_robustness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
