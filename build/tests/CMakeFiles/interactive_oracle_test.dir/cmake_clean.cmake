file(REMOVE_RECURSE
  "CMakeFiles/interactive_oracle_test.dir/core/interactive_oracle_test.cc.o"
  "CMakeFiles/interactive_oracle_test.dir/core/interactive_oracle_test.cc.o.d"
  "interactive_oracle_test"
  "interactive_oracle_test.pdb"
  "interactive_oracle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interactive_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
