# Empty compiler generated dependencies file for interactive_oracle_test.
# This may be replaced when dependencies are built.
