# Empty dependencies file for normal_forms_test.
# This may be replaced when dependencies are built.
