file(REMOVE_RECURSE
  "CMakeFiles/eer_transform_test.dir/eer/transform_test.cc.o"
  "CMakeFiles/eer_transform_test.dir/eer/transform_test.cc.o.d"
  "eer_transform_test"
  "eer_transform_test.pdb"
  "eer_transform_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eer_transform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
