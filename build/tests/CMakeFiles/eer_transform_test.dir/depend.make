# Empty dependencies file for eer_transform_test.
# This may be replaced when dependencies are built.
