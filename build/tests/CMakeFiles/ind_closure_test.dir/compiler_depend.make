# Empty compiler generated dependencies file for ind_closure_test.
# This may be replaced when dependencies are built.
