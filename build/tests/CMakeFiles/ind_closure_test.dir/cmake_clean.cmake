file(REMOVE_RECURSE
  "CMakeFiles/ind_closure_test.dir/deps/ind_closure_test.cc.o"
  "CMakeFiles/ind_closure_test.dir/deps/ind_closure_test.cc.o.d"
  "ind_closure_test"
  "ind_closure_test.pdb"
  "ind_closure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ind_closure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
