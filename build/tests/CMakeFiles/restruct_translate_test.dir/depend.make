# Empty dependencies file for restruct_translate_test.
# This may be replaced when dependencies are built.
