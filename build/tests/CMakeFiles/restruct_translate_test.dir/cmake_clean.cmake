file(REMOVE_RECURSE
  "CMakeFiles/restruct_translate_test.dir/core/restruct_translate_test.cc.o"
  "CMakeFiles/restruct_translate_test.dir/core/restruct_translate_test.cc.o.d"
  "restruct_translate_test"
  "restruct_translate_test.pdb"
  "restruct_translate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restruct_translate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
