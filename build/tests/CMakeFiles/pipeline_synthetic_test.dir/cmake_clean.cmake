file(REMOVE_RECURSE
  "CMakeFiles/pipeline_synthetic_test.dir/workload/pipeline_synthetic_test.cc.o"
  "CMakeFiles/pipeline_synthetic_test.dir/workload/pipeline_synthetic_test.cc.o.d"
  "pipeline_synthetic_test"
  "pipeline_synthetic_test.pdb"
  "pipeline_synthetic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_synthetic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
