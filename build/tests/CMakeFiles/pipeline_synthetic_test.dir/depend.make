# Empty dependencies file for pipeline_synthetic_test.
# This may be replaced when dependencies are built.
