file(REMOVE_RECURSE
  "CMakeFiles/scanner_ddl_test.dir/sql/scanner_ddl_test.cc.o"
  "CMakeFiles/scanner_ddl_test.dir/sql/scanner_ddl_test.cc.o.d"
  "scanner_ddl_test"
  "scanner_ddl_test.pdb"
  "scanner_ddl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scanner_ddl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
