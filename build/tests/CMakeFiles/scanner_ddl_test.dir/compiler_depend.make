# Empty compiler generated dependencies file for scanner_ddl_test.
# This may be replaced when dependencies are built.
