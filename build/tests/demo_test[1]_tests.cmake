add_test([=[DemoDatasetTest.EndToEnd]=]  /root/repo/build/tests/demo_test [==[--gtest_filter=DemoDatasetTest.EndToEnd]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[DemoDatasetTest.EndToEnd]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  demo_test_TESTS DemoDatasetTest.EndToEnd)
