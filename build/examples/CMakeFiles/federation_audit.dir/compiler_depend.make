# Empty compiler generated dependencies file for federation_audit.
# This may be replaced when dependencies are built.
