file(REMOVE_RECURSE
  "CMakeFiles/federation_audit.dir/federation_audit.cc.o"
  "CMakeFiles/federation_audit.dir/federation_audit.cc.o.d"
  "federation_audit"
  "federation_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federation_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
