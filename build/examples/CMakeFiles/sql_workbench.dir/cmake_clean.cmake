file(REMOVE_RECURSE
  "CMakeFiles/sql_workbench.dir/sql_workbench.cc.o"
  "CMakeFiles/sql_workbench.dir/sql_workbench.cc.o.d"
  "sql_workbench"
  "sql_workbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_workbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
