file(REMOVE_RECURSE
  "CMakeFiles/legacy_hr.dir/legacy_hr.cc.o"
  "CMakeFiles/legacy_hr.dir/legacy_hr.cc.o.d"
  "legacy_hr"
  "legacy_hr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legacy_hr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
