# Empty dependencies file for legacy_hr.
# This may be replaced when dependencies are built.
