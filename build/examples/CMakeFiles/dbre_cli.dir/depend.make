# Empty dependencies file for dbre_cli.
# This may be replaced when dependencies are built.
