file(REMOVE_RECURSE
  "CMakeFiles/dbre_cli.dir/dbre_cli.cc.o"
  "CMakeFiles/dbre_cli.dir/dbre_cli.cc.o.d"
  "dbre_cli"
  "dbre_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbre_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
