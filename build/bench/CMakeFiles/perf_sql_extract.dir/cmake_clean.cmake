file(REMOVE_RECURSE
  "CMakeFiles/perf_sql_extract.dir/perf_sql_extract.cc.o"
  "CMakeFiles/perf_sql_extract.dir/perf_sql_extract.cc.o.d"
  "perf_sql_extract"
  "perf_sql_extract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_sql_extract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
