# Empty dependencies file for perf_sql_extract.
# This may be replaced when dependencies are built.
