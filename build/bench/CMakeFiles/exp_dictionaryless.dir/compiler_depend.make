# Empty compiler generated dependencies file for exp_dictionaryless.
# This may be replaced when dependencies are built.
