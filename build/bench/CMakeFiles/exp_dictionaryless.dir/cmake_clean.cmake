file(REMOVE_RECURSE
  "CMakeFiles/exp_dictionaryless.dir/exp_dictionaryless.cc.o"
  "CMakeFiles/exp_dictionaryless.dir/exp_dictionaryless.cc.o.d"
  "exp_dictionaryless"
  "exp_dictionaryless.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_dictionaryless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
