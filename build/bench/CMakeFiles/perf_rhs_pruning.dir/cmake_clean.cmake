file(REMOVE_RECURSE
  "CMakeFiles/perf_rhs_pruning.dir/perf_rhs_pruning.cc.o"
  "CMakeFiles/perf_rhs_pruning.dir/perf_rhs_pruning.cc.o.d"
  "perf_rhs_pruning"
  "perf_rhs_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_rhs_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
