# Empty dependencies file for perf_rhs_pruning.
# This may be replaced when dependencies are built.
