file(REMOVE_RECURSE
  "CMakeFiles/exp_synthesis_compare.dir/exp_synthesis_compare.cc.o"
  "CMakeFiles/exp_synthesis_compare.dir/exp_synthesis_compare.cc.o.d"
  "exp_synthesis_compare"
  "exp_synthesis_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_synthesis_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
