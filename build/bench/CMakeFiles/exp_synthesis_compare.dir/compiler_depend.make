# Empty compiler generated dependencies file for exp_synthesis_compare.
# This may be replaced when dependencies are built.
