# Empty dependencies file for perf_ind_discovery.
# This may be replaced when dependencies are built.
