file(REMOVE_RECURSE
  "CMakeFiles/perf_ind_discovery.dir/perf_ind_discovery.cc.o"
  "CMakeFiles/perf_ind_discovery.dir/perf_ind_discovery.cc.o.d"
  "perf_ind_discovery"
  "perf_ind_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_ind_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
