file(REMOVE_RECURSE
  "CMakeFiles/exp_paper_example.dir/exp_paper_example.cc.o"
  "CMakeFiles/exp_paper_example.dir/exp_paper_example.cc.o.d"
  "exp_paper_example"
  "exp_paper_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_paper_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
