# Empty dependencies file for exp_paper_example.
# This may be replaced when dependencies are built.
