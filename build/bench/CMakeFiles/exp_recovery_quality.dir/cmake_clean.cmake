file(REMOVE_RECURSE
  "CMakeFiles/exp_recovery_quality.dir/exp_recovery_quality.cc.o"
  "CMakeFiles/exp_recovery_quality.dir/exp_recovery_quality.cc.o.d"
  "exp_recovery_quality"
  "exp_recovery_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_recovery_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
