# Empty dependencies file for exp_recovery_quality.
# This may be replaced when dependencies are built.
