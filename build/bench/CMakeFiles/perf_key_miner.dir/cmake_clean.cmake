file(REMOVE_RECURSE
  "CMakeFiles/perf_key_miner.dir/perf_key_miner.cc.o"
  "CMakeFiles/perf_key_miner.dir/perf_key_miner.cc.o.d"
  "perf_key_miner"
  "perf_key_miner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_key_miner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
