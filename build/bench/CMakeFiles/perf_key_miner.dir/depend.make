# Empty dependencies file for perf_key_miner.
# This may be replaced when dependencies are built.
