file(REMOVE_RECURSE
  "CMakeFiles/perf_executor.dir/perf_executor.cc.o"
  "CMakeFiles/perf_executor.dir/perf_executor.cc.o.d"
  "perf_executor"
  "perf_executor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_executor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
