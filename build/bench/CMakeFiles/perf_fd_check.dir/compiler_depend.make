# Empty compiler generated dependencies file for perf_fd_check.
# This may be replaced when dependencies are built.
