file(REMOVE_RECURSE
  "CMakeFiles/perf_fd_check.dir/perf_fd_check.cc.o"
  "CMakeFiles/perf_fd_check.dir/perf_fd_check.cc.o.d"
  "perf_fd_check"
  "perf_fd_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_fd_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
