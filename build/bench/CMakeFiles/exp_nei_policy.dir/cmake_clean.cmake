file(REMOVE_RECURSE
  "CMakeFiles/exp_nei_policy.dir/exp_nei_policy.cc.o"
  "CMakeFiles/exp_nei_policy.dir/exp_nei_policy.cc.o.d"
  "exp_nei_policy"
  "exp_nei_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_nei_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
