# Empty compiler generated dependencies file for exp_nei_policy.
# This may be replaced when dependencies are built.
