# Empty compiler generated dependencies file for perf_guided_vs_exhaustive.
# This may be replaced when dependencies are built.
