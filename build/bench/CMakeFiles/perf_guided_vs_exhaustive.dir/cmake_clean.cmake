file(REMOVE_RECURSE
  "CMakeFiles/perf_guided_vs_exhaustive.dir/perf_guided_vs_exhaustive.cc.o"
  "CMakeFiles/perf_guided_vs_exhaustive.dir/perf_guided_vs_exhaustive.cc.o.d"
  "perf_guided_vs_exhaustive"
  "perf_guided_vs_exhaustive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_guided_vs_exhaustive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
