# Empty dependencies file for exp_normal_forms.
# This may be replaced when dependencies are built.
