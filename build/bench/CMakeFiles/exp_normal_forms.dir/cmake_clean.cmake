file(REMOVE_RECURSE
  "CMakeFiles/exp_normal_forms.dir/exp_normal_forms.cc.o"
  "CMakeFiles/exp_normal_forms.dir/exp_normal_forms.cc.o.d"
  "exp_normal_forms"
  "exp_normal_forms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_normal_forms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
