# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for perf_fd_targeted_vs_mining.
