file(REMOVE_RECURSE
  "CMakeFiles/perf_fd_targeted_vs_mining.dir/perf_fd_targeted_vs_mining.cc.o"
  "CMakeFiles/perf_fd_targeted_vs_mining.dir/perf_fd_targeted_vs_mining.cc.o.d"
  "perf_fd_targeted_vs_mining"
  "perf_fd_targeted_vs_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_fd_targeted_vs_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
