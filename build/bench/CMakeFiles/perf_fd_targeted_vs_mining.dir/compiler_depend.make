# Empty compiler generated dependencies file for perf_fd_targeted_vs_mining.
# This may be replaced when dependencies are built.
