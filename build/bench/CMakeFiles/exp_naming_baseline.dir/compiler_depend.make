# Empty compiler generated dependencies file for exp_naming_baseline.
# This may be replaced when dependencies are built.
