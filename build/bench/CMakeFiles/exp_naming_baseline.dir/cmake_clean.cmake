file(REMOVE_RECURSE
  "CMakeFiles/exp_naming_baseline.dir/exp_naming_baseline.cc.o"
  "CMakeFiles/exp_naming_baseline.dir/exp_naming_baseline.cc.o.d"
  "exp_naming_baseline"
  "exp_naming_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_naming_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
