file(REMOVE_RECURSE
  "CMakeFiles/exp_library.dir/exp_library.cc.o"
  "CMakeFiles/exp_library.dir/exp_library.cc.o.d"
  "exp_library"
  "exp_library.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_library.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
