# Empty compiler generated dependencies file for exp_library.
# This may be replaced when dependencies are built.
