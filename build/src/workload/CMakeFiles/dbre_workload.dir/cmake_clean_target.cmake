file(REMOVE_RECURSE
  "libdbre_workload.a"
)
