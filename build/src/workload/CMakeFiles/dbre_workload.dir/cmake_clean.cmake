file(REMOVE_RECURSE
  "CMakeFiles/dbre_workload.dir/generator.cc.o"
  "CMakeFiles/dbre_workload.dir/generator.cc.o.d"
  "CMakeFiles/dbre_workload.dir/library_example.cc.o"
  "CMakeFiles/dbre_workload.dir/library_example.cc.o.d"
  "CMakeFiles/dbre_workload.dir/metrics.cc.o"
  "CMakeFiles/dbre_workload.dir/metrics.cc.o.d"
  "CMakeFiles/dbre_workload.dir/paper_example.cc.o"
  "CMakeFiles/dbre_workload.dir/paper_example.cc.o.d"
  "libdbre_workload.a"
  "libdbre_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbre_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
