# Empty dependencies file for dbre_workload.
# This may be replaced when dependencies are built.
