file(REMOVE_RECURSE
  "libdbre_common.a"
)
