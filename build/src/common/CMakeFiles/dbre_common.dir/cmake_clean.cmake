file(REMOVE_RECURSE
  "CMakeFiles/dbre_common.dir/status.cc.o"
  "CMakeFiles/dbre_common.dir/status.cc.o.d"
  "CMakeFiles/dbre_common.dir/string_util.cc.o"
  "CMakeFiles/dbre_common.dir/string_util.cc.o.d"
  "libdbre_common.a"
  "libdbre_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbre_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
