# Empty dependencies file for dbre_common.
# This may be replaced when dependencies are built.
