file(REMOVE_RECURSE
  "libdbre_sql.a"
)
