file(REMOVE_RECURSE
  "CMakeFiles/dbre_sql.dir/ast.cc.o"
  "CMakeFiles/dbre_sql.dir/ast.cc.o.d"
  "CMakeFiles/dbre_sql.dir/ddl.cc.o"
  "CMakeFiles/dbre_sql.dir/ddl.cc.o.d"
  "CMakeFiles/dbre_sql.dir/ddl_writer.cc.o"
  "CMakeFiles/dbre_sql.dir/ddl_writer.cc.o.d"
  "CMakeFiles/dbre_sql.dir/executor.cc.o"
  "CMakeFiles/dbre_sql.dir/executor.cc.o.d"
  "CMakeFiles/dbre_sql.dir/extractor.cc.o"
  "CMakeFiles/dbre_sql.dir/extractor.cc.o.d"
  "CMakeFiles/dbre_sql.dir/parser.cc.o"
  "CMakeFiles/dbre_sql.dir/parser.cc.o.d"
  "CMakeFiles/dbre_sql.dir/scanner.cc.o"
  "CMakeFiles/dbre_sql.dir/scanner.cc.o.d"
  "CMakeFiles/dbre_sql.dir/selection_analysis.cc.o"
  "CMakeFiles/dbre_sql.dir/selection_analysis.cc.o.d"
  "CMakeFiles/dbre_sql.dir/token.cc.o"
  "CMakeFiles/dbre_sql.dir/token.cc.o.d"
  "libdbre_sql.a"
  "libdbre_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbre_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
