# Empty compiler generated dependencies file for dbre_sql.
# This may be replaced when dependencies are built.
