
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sql/ast.cc" "src/sql/CMakeFiles/dbre_sql.dir/ast.cc.o" "gcc" "src/sql/CMakeFiles/dbre_sql.dir/ast.cc.o.d"
  "/root/repo/src/sql/ddl.cc" "src/sql/CMakeFiles/dbre_sql.dir/ddl.cc.o" "gcc" "src/sql/CMakeFiles/dbre_sql.dir/ddl.cc.o.d"
  "/root/repo/src/sql/ddl_writer.cc" "src/sql/CMakeFiles/dbre_sql.dir/ddl_writer.cc.o" "gcc" "src/sql/CMakeFiles/dbre_sql.dir/ddl_writer.cc.o.d"
  "/root/repo/src/sql/executor.cc" "src/sql/CMakeFiles/dbre_sql.dir/executor.cc.o" "gcc" "src/sql/CMakeFiles/dbre_sql.dir/executor.cc.o.d"
  "/root/repo/src/sql/extractor.cc" "src/sql/CMakeFiles/dbre_sql.dir/extractor.cc.o" "gcc" "src/sql/CMakeFiles/dbre_sql.dir/extractor.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/sql/CMakeFiles/dbre_sql.dir/parser.cc.o" "gcc" "src/sql/CMakeFiles/dbre_sql.dir/parser.cc.o.d"
  "/root/repo/src/sql/scanner.cc" "src/sql/CMakeFiles/dbre_sql.dir/scanner.cc.o" "gcc" "src/sql/CMakeFiles/dbre_sql.dir/scanner.cc.o.d"
  "/root/repo/src/sql/selection_analysis.cc" "src/sql/CMakeFiles/dbre_sql.dir/selection_analysis.cc.o" "gcc" "src/sql/CMakeFiles/dbre_sql.dir/selection_analysis.cc.o.d"
  "/root/repo/src/sql/token.cc" "src/sql/CMakeFiles/dbre_sql.dir/token.cc.o" "gcc" "src/sql/CMakeFiles/dbre_sql.dir/token.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/relational/CMakeFiles/dbre_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dbre_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
