file(REMOVE_RECURSE
  "CMakeFiles/dbre_relational.dir/algebra.cc.o"
  "CMakeFiles/dbre_relational.dir/algebra.cc.o.d"
  "CMakeFiles/dbre_relational.dir/attribute_set.cc.o"
  "CMakeFiles/dbre_relational.dir/attribute_set.cc.o.d"
  "CMakeFiles/dbre_relational.dir/csv.cc.o"
  "CMakeFiles/dbre_relational.dir/csv.cc.o.d"
  "CMakeFiles/dbre_relational.dir/database.cc.o"
  "CMakeFiles/dbre_relational.dir/database.cc.o.d"
  "CMakeFiles/dbre_relational.dir/equi_join.cc.o"
  "CMakeFiles/dbre_relational.dir/equi_join.cc.o.d"
  "CMakeFiles/dbre_relational.dir/schema.cc.o"
  "CMakeFiles/dbre_relational.dir/schema.cc.o.d"
  "CMakeFiles/dbre_relational.dir/table.cc.o"
  "CMakeFiles/dbre_relational.dir/table.cc.o.d"
  "CMakeFiles/dbre_relational.dir/value.cc.o"
  "CMakeFiles/dbre_relational.dir/value.cc.o.d"
  "libdbre_relational.a"
  "libdbre_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbre_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
