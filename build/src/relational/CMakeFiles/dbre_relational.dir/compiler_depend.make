# Empty compiler generated dependencies file for dbre_relational.
# This may be replaced when dependencies are built.
