file(REMOVE_RECURSE
  "libdbre_relational.a"
)
