
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relational/algebra.cc" "src/relational/CMakeFiles/dbre_relational.dir/algebra.cc.o" "gcc" "src/relational/CMakeFiles/dbre_relational.dir/algebra.cc.o.d"
  "/root/repo/src/relational/attribute_set.cc" "src/relational/CMakeFiles/dbre_relational.dir/attribute_set.cc.o" "gcc" "src/relational/CMakeFiles/dbre_relational.dir/attribute_set.cc.o.d"
  "/root/repo/src/relational/csv.cc" "src/relational/CMakeFiles/dbre_relational.dir/csv.cc.o" "gcc" "src/relational/CMakeFiles/dbre_relational.dir/csv.cc.o.d"
  "/root/repo/src/relational/database.cc" "src/relational/CMakeFiles/dbre_relational.dir/database.cc.o" "gcc" "src/relational/CMakeFiles/dbre_relational.dir/database.cc.o.d"
  "/root/repo/src/relational/equi_join.cc" "src/relational/CMakeFiles/dbre_relational.dir/equi_join.cc.o" "gcc" "src/relational/CMakeFiles/dbre_relational.dir/equi_join.cc.o.d"
  "/root/repo/src/relational/schema.cc" "src/relational/CMakeFiles/dbre_relational.dir/schema.cc.o" "gcc" "src/relational/CMakeFiles/dbre_relational.dir/schema.cc.o.d"
  "/root/repo/src/relational/table.cc" "src/relational/CMakeFiles/dbre_relational.dir/table.cc.o" "gcc" "src/relational/CMakeFiles/dbre_relational.dir/table.cc.o.d"
  "/root/repo/src/relational/value.cc" "src/relational/CMakeFiles/dbre_relational.dir/value.cc.o" "gcc" "src/relational/CMakeFiles/dbre_relational.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dbre_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
