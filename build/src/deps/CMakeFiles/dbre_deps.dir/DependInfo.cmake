
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/deps/armstrong.cc" "src/deps/CMakeFiles/dbre_deps.dir/armstrong.cc.o" "gcc" "src/deps/CMakeFiles/dbre_deps.dir/armstrong.cc.o.d"
  "/root/repo/src/deps/fd.cc" "src/deps/CMakeFiles/dbre_deps.dir/fd.cc.o" "gcc" "src/deps/CMakeFiles/dbre_deps.dir/fd.cc.o.d"
  "/root/repo/src/deps/fd_miner.cc" "src/deps/CMakeFiles/dbre_deps.dir/fd_miner.cc.o" "gcc" "src/deps/CMakeFiles/dbre_deps.dir/fd_miner.cc.o.d"
  "/root/repo/src/deps/ind.cc" "src/deps/CMakeFiles/dbre_deps.dir/ind.cc.o" "gcc" "src/deps/CMakeFiles/dbre_deps.dir/ind.cc.o.d"
  "/root/repo/src/deps/ind_closure.cc" "src/deps/CMakeFiles/dbre_deps.dir/ind_closure.cc.o" "gcc" "src/deps/CMakeFiles/dbre_deps.dir/ind_closure.cc.o.d"
  "/root/repo/src/deps/ind_miner.cc" "src/deps/CMakeFiles/dbre_deps.dir/ind_miner.cc.o" "gcc" "src/deps/CMakeFiles/dbre_deps.dir/ind_miner.cc.o.d"
  "/root/repo/src/deps/key_miner.cc" "src/deps/CMakeFiles/dbre_deps.dir/key_miner.cc.o" "gcc" "src/deps/CMakeFiles/dbre_deps.dir/key_miner.cc.o.d"
  "/root/repo/src/deps/name_matcher.cc" "src/deps/CMakeFiles/dbre_deps.dir/name_matcher.cc.o" "gcc" "src/deps/CMakeFiles/dbre_deps.dir/name_matcher.cc.o.d"
  "/root/repo/src/deps/normal_forms.cc" "src/deps/CMakeFiles/dbre_deps.dir/normal_forms.cc.o" "gcc" "src/deps/CMakeFiles/dbre_deps.dir/normal_forms.cc.o.d"
  "/root/repo/src/deps/partition.cc" "src/deps/CMakeFiles/dbre_deps.dir/partition.cc.o" "gcc" "src/deps/CMakeFiles/dbre_deps.dir/partition.cc.o.d"
  "/root/repo/src/deps/synthesis.cc" "src/deps/CMakeFiles/dbre_deps.dir/synthesis.cc.o" "gcc" "src/deps/CMakeFiles/dbre_deps.dir/synthesis.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/relational/CMakeFiles/dbre_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dbre_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
