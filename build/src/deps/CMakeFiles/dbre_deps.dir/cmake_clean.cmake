file(REMOVE_RECURSE
  "CMakeFiles/dbre_deps.dir/armstrong.cc.o"
  "CMakeFiles/dbre_deps.dir/armstrong.cc.o.d"
  "CMakeFiles/dbre_deps.dir/fd.cc.o"
  "CMakeFiles/dbre_deps.dir/fd.cc.o.d"
  "CMakeFiles/dbre_deps.dir/fd_miner.cc.o"
  "CMakeFiles/dbre_deps.dir/fd_miner.cc.o.d"
  "CMakeFiles/dbre_deps.dir/ind.cc.o"
  "CMakeFiles/dbre_deps.dir/ind.cc.o.d"
  "CMakeFiles/dbre_deps.dir/ind_closure.cc.o"
  "CMakeFiles/dbre_deps.dir/ind_closure.cc.o.d"
  "CMakeFiles/dbre_deps.dir/ind_miner.cc.o"
  "CMakeFiles/dbre_deps.dir/ind_miner.cc.o.d"
  "CMakeFiles/dbre_deps.dir/key_miner.cc.o"
  "CMakeFiles/dbre_deps.dir/key_miner.cc.o.d"
  "CMakeFiles/dbre_deps.dir/name_matcher.cc.o"
  "CMakeFiles/dbre_deps.dir/name_matcher.cc.o.d"
  "CMakeFiles/dbre_deps.dir/normal_forms.cc.o"
  "CMakeFiles/dbre_deps.dir/normal_forms.cc.o.d"
  "CMakeFiles/dbre_deps.dir/partition.cc.o"
  "CMakeFiles/dbre_deps.dir/partition.cc.o.d"
  "CMakeFiles/dbre_deps.dir/synthesis.cc.o"
  "CMakeFiles/dbre_deps.dir/synthesis.cc.o.d"
  "libdbre_deps.a"
  "libdbre_deps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbre_deps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
