# Empty compiler generated dependencies file for dbre_deps.
# This may be replaced when dependencies are built.
