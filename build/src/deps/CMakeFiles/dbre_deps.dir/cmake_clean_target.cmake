file(REMOVE_RECURSE
  "libdbre_deps.a"
)
