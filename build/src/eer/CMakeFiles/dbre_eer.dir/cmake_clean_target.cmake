file(REMOVE_RECURSE
  "libdbre_eer.a"
)
