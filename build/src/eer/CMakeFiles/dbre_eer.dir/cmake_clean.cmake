file(REMOVE_RECURSE
  "CMakeFiles/dbre_eer.dir/dot_export.cc.o"
  "CMakeFiles/dbre_eer.dir/dot_export.cc.o.d"
  "CMakeFiles/dbre_eer.dir/model.cc.o"
  "CMakeFiles/dbre_eer.dir/model.cc.o.d"
  "CMakeFiles/dbre_eer.dir/transform.cc.o"
  "CMakeFiles/dbre_eer.dir/transform.cc.o.d"
  "libdbre_eer.a"
  "libdbre_eer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbre_eer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
