# Empty compiler generated dependencies file for dbre_eer.
# This may be replaced when dependencies are built.
