
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eer/dot_export.cc" "src/eer/CMakeFiles/dbre_eer.dir/dot_export.cc.o" "gcc" "src/eer/CMakeFiles/dbre_eer.dir/dot_export.cc.o.d"
  "/root/repo/src/eer/model.cc" "src/eer/CMakeFiles/dbre_eer.dir/model.cc.o" "gcc" "src/eer/CMakeFiles/dbre_eer.dir/model.cc.o.d"
  "/root/repo/src/eer/transform.cc" "src/eer/CMakeFiles/dbre_eer.dir/transform.cc.o" "gcc" "src/eer/CMakeFiles/dbre_eer.dir/transform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/relational/CMakeFiles/dbre_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dbre_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
