# Empty dependencies file for dbre_core.
# This may be replaced when dependencies are built.
