file(REMOVE_RECURSE
  "CMakeFiles/dbre_core.dir/ind_discovery.cc.o"
  "CMakeFiles/dbre_core.dir/ind_discovery.cc.o.d"
  "CMakeFiles/dbre_core.dir/interactive_oracle.cc.o"
  "CMakeFiles/dbre_core.dir/interactive_oracle.cc.o.d"
  "CMakeFiles/dbre_core.dir/lhs_discovery.cc.o"
  "CMakeFiles/dbre_core.dir/lhs_discovery.cc.o.d"
  "CMakeFiles/dbre_core.dir/navigation_graph.cc.o"
  "CMakeFiles/dbre_core.dir/navigation_graph.cc.o.d"
  "CMakeFiles/dbre_core.dir/oracle.cc.o"
  "CMakeFiles/dbre_core.dir/oracle.cc.o.d"
  "CMakeFiles/dbre_core.dir/pipeline.cc.o"
  "CMakeFiles/dbre_core.dir/pipeline.cc.o.d"
  "CMakeFiles/dbre_core.dir/report_json.cc.o"
  "CMakeFiles/dbre_core.dir/report_json.cc.o.d"
  "CMakeFiles/dbre_core.dir/restruct.cc.o"
  "CMakeFiles/dbre_core.dir/restruct.cc.o.d"
  "CMakeFiles/dbre_core.dir/rhs_discovery.cc.o"
  "CMakeFiles/dbre_core.dir/rhs_discovery.cc.o.d"
  "CMakeFiles/dbre_core.dir/translate.cc.o"
  "CMakeFiles/dbre_core.dir/translate.cc.o.d"
  "libdbre_core.a"
  "libdbre_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbre_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
