file(REMOVE_RECURSE
  "libdbre_core.a"
)
