# Empty compiler generated dependencies file for dbre_core.
# This may be replaced when dependencies are built.
