
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ind_discovery.cc" "src/core/CMakeFiles/dbre_core.dir/ind_discovery.cc.o" "gcc" "src/core/CMakeFiles/dbre_core.dir/ind_discovery.cc.o.d"
  "/root/repo/src/core/interactive_oracle.cc" "src/core/CMakeFiles/dbre_core.dir/interactive_oracle.cc.o" "gcc" "src/core/CMakeFiles/dbre_core.dir/interactive_oracle.cc.o.d"
  "/root/repo/src/core/lhs_discovery.cc" "src/core/CMakeFiles/dbre_core.dir/lhs_discovery.cc.o" "gcc" "src/core/CMakeFiles/dbre_core.dir/lhs_discovery.cc.o.d"
  "/root/repo/src/core/navigation_graph.cc" "src/core/CMakeFiles/dbre_core.dir/navigation_graph.cc.o" "gcc" "src/core/CMakeFiles/dbre_core.dir/navigation_graph.cc.o.d"
  "/root/repo/src/core/oracle.cc" "src/core/CMakeFiles/dbre_core.dir/oracle.cc.o" "gcc" "src/core/CMakeFiles/dbre_core.dir/oracle.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/core/CMakeFiles/dbre_core.dir/pipeline.cc.o" "gcc" "src/core/CMakeFiles/dbre_core.dir/pipeline.cc.o.d"
  "/root/repo/src/core/report_json.cc" "src/core/CMakeFiles/dbre_core.dir/report_json.cc.o" "gcc" "src/core/CMakeFiles/dbre_core.dir/report_json.cc.o.d"
  "/root/repo/src/core/restruct.cc" "src/core/CMakeFiles/dbre_core.dir/restruct.cc.o" "gcc" "src/core/CMakeFiles/dbre_core.dir/restruct.cc.o.d"
  "/root/repo/src/core/rhs_discovery.cc" "src/core/CMakeFiles/dbre_core.dir/rhs_discovery.cc.o" "gcc" "src/core/CMakeFiles/dbre_core.dir/rhs_discovery.cc.o.d"
  "/root/repo/src/core/translate.cc" "src/core/CMakeFiles/dbre_core.dir/translate.cc.o" "gcc" "src/core/CMakeFiles/dbre_core.dir/translate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/deps/CMakeFiles/dbre_deps.dir/DependInfo.cmake"
  "/root/repo/build/src/eer/CMakeFiles/dbre_eer.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/dbre_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/dbre_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dbre_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
