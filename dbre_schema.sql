CREATE TABLE Customers (
  id INT,
  name TEXT,
  city TEXT,
  PRIMARY KEY (id)
);
CREATE TABLE Orders (
  ord INT,
  cust INT,
  prod INT,
  qty INT,
  status TEXT,
  PRIMARY KEY (ord)
);
CREATE TABLE Orders_cust (
  cust INT,
  PRIMARY KEY (cust)
);
CREATE TABLE Orders_prod (
  prod INT,
  prod_name TEXT,
  PRIMARY KEY (prod)
);
CREATE TABLE Shipments (
  ship INT,
  prod INT,
  carrier TEXT NOT NULL,
  PRIMARY KEY (ship)
);
CREATE TABLE Shipments_prod (
  prod INT,
  PRIMARY KEY (prod)
);
