-- Legacy order-management dictionary: only unique / not-null survive.
CREATE TABLE Customers (
  id INT PRIMARY KEY,
  name VARCHAR(30),
  city VARCHAR(30)
);
CREATE TABLE Orders (
  ord INT PRIMARY KEY,
  cust INT,
  prod INT,
  prod_name VARCHAR(30),
  qty INT,
  status CHAR(10)
);
CREATE TABLE Shipments (
  ship INT PRIMARY KEY,
  prod INT,
  carrier VARCHAR(20) NOT NULL
);
